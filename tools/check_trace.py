#!/usr/bin/env python3
"""Validate an atlc Chrome trace-event file (`atlc_run --trace` output).

Checks the schema contract that DESIGN.md §12 promises and Perfetto/
chrome://tracing rely on:

  * the document is a JSON object with a `traceEvents` array;
  * every event carries the required keys (name, ph, pid, tid; ts for
    everything except `M` metadata events);
  * `ph` is one of B / E / i / X / C / M;
  * `X` (complete) events carry a non-negative `dur`;
  * per (pid, tid) track, timestamps are monotonically non-decreasing in
    array order (the exporter sorts per track, so any violation means an
    exporter bug);
  * B/E span events balance per track, with matching names on pop.

Exits non-zero listing every violation (capped) so CI output stays short.

Usage: tools/check_trace.py trace.json [more.json ...]

Stdlib only — runs anywhere CI has a python3.
"""

import json
import sys

VALID_PH = {"B", "E", "i", "X", "C", "M"}
MAX_REPORTED = 20


def check_trace(path):
    errors = []

    def err(msg):
        if len(errors) < MAX_REPORTED:
            errors.append(f"{path}: {msg}")
        elif len(errors) == MAX_REPORTED:
            errors.append(f"{path}: ... further errors suppressed")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        return [f"{path}: not readable as JSON: {ex}"]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return [f"{path}: document must be an object with 'traceEvents'"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: 'traceEvents' must be an array"]

    last_ts = {}     # (pid, tid) -> last timestamp seen
    span_stack = {}  # (pid, tid) -> [open span names]
    counted = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            err(f"event {i}: not an object")
            continue
        missing = [k for k in ("name", "ph", "pid", "tid") if k not in e]
        if missing:
            err(f"event {i}: missing keys {missing}")
            continue
        ph = e["ph"]
        if ph not in VALID_PH:
            err(f"event {i}: invalid ph {ph!r}")
            continue
        if ph == "M":
            continue  # metadata: no timestamp required
        counted += 1
        if "ts" not in e:
            err(f"event {i}: missing 'ts'")
            continue
        ts = e["ts"]
        if not isinstance(ts, (int, float)):
            err(f"event {i}: 'ts' is not a number")
            continue
        track = (e["pid"], e["tid"])
        if track in last_ts and ts < last_ts[track]:
            err(f"event {i}: ts {ts} < previous {last_ts[track]} on "
                f"track pid={track[0]} tid={track[1]}")
        last_ts[track] = ts
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                err(f"event {i}: X event needs a non-negative 'dur' "
                    f"(got {dur!r})")
        elif ph == "B":
            span_stack.setdefault(track, []).append(e["name"])
        elif ph == "E":
            stack = span_stack.setdefault(track, [])
            if not stack:
                err(f"event {i}: E '{e['name']}' without an open B on "
                    f"track pid={track[0]} tid={track[1]}")
            elif stack[-1] != e["name"]:
                err(f"event {i}: E '{e['name']}' closes B '{stack[-1]}'")
                stack.pop()
            else:
                stack.pop()

    for (pid, tid), stack in sorted(span_stack.items()):
        if stack:
            err(f"unclosed spans {stack} on track pid={pid} tid={tid}")

    if not errors:
        print(f"{path}: OK — {counted} events on {len(last_ts)} tracks")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_trace(path))
    for msg in all_errors:
        print(f"ERROR: {msg}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
