// bench_compare — regression gate over two `atlc_bench --json` documents.
//
//   bench_compare baseline.json current.json
//   bench_compare --tolerance=0.5 --all-metrics baseline.json current.json
//
// Exit codes: 0 = no gated metric regressed; 1 = regression (or the files
// are incomparable); 2 = usage / parse error. CI runs this against the
// checked-in bench/baselines/ after every `atlc_bench --all --smoke`.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atlc/util/bench_compare.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/table.hpp"

namespace {

using namespace atlc;

void usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [options] <baseline.json> <current.json>\n"
      "\n"
      "options:\n"
      "  --tolerance=F    allowed fractional regression on gated metrics\n"
      "                   (default: 0.25, i.e. fail when >25%% slower)\n"
      "  --min-value=F    noise floor below which metrics never gate\n"
      "                   (default: 1e-6)\n"
      "  --all-metrics    report un-gated metrics too (they still never\n"
      "                   fail the gate)\n");
}

bool parse_double(const char* text, double& out) {
  char* end = nullptr;
  out = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "bench_compare: not a number: '%s'\n", text);
    usage();
    return false;
  }
  return true;
}

std::optional<util::Json> load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = util::Json::parse(buf.str(), &error);
  if (!doc)
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  util::CompareOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg.rfind("--tolerance=", 0) == 0) {
      if (!parse_double(arg.c_str() + 12, options.tolerance)) return 2;
    } else if (arg.rfind("--min-value=", 0) == 0) {
      if (!parse_double(arg.c_str() + 12, options.min_value)) return 2;
    } else if (arg == "--all-metrics") {
      options.gated_only = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    usage();
    return 2;
  }

  const auto baseline = load(files[0]);
  const auto current = load(files[1]);
  if (!baseline || !current) return 2;

  const auto report = util::compare_bench_runs(*baseline, *current, options);

  util::Table table({"Metric", "Baseline", "Current", "Ratio", "Gate",
                     "Verdict"});
  for (const auto& m : report.metrics) {
    char base_s[48], cur_s[48], ratio_s[32];
    std::snprintf(base_s, sizeof(base_s), "%.6g %s", m.baseline,
                  m.unit.c_str());
    std::snprintf(cur_s, sizeof(cur_s), "%.6g %s", m.current, m.unit.c_str());
    std::snprintf(ratio_s, sizeof(ratio_s), "%.3fx", m.ratio);
    table.add_row({m.name, base_s, cur_s, ratio_s, m.gated ? "yes" : "no",
                   m.regressed ? "REGRESSED" : "ok"});
  }
  table.print("bench_compare: " + report.scenario + " (tolerance " +
              util::Table::fmt_percent(options.tolerance) + ")");
  for (const auto& note : report.notes)
    std::printf("note: %s\n", note.c_str());

  if (report.metrics.empty())
    std::printf("no gated metrics to compare — gate passes vacuously\n");
  std::printf("%s\n", report.ok ? "PASS: no gated regression"
                                : "FAIL: gated regression detected");
  return report.ok ? 0 : 1;
}
