# End-to-end ingest smoke (ctest tier1): R-MAT -> v1 binary -> atlc_ingest
# (spill path forced by a tiny memory budget) -> atlc_run --snapshot, and
# the resulting LCC/TC CSVs must be byte-identical to the in-memory
# load+clean path on the same input and seed, across partition kinds.
#
# Driven as: cmake -DATLC_RUN=... -DATLC_INGEST=... -DWORK_DIR=...
#                  -P ingest_smoke.cmake

foreach(var ATLC_RUN ATLC_INGEST WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ingest_smoke: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ingest_smoke: command failed (${rc}): ${ARGV}")
  endif()
endfunction()

set(seed 3)
set(ranks 8)

# A seeded R-MAT proxy, snapshotted to the v1 binary format.
run_checked(${ATLC_RUN} --rmat-scale 8 --rmat-ef 8 --seed ${seed}
            --convert ${WORK_DIR}/g.bin)

# Ingest with a deliberately tiny budget (10 KiB against a ~32 KiB edge
# stream) so the spill/merge path runs.
run_checked(${ATLC_INGEST} --input ${WORK_DIR}/g.bin
            --output ${WORK_DIR}/g.v2 --ranks ${ranks} --seed ${seed}
            --mem-budget-mb 0.01)

# Re-ingesting a snapshot must be rejected.
execute_process(COMMAND ${ATLC_INGEST} --input ${WORK_DIR}/g.v2
                --output ${WORK_DIR}/twice.v2 RESULT_VARIABLE rc
                ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "ingest_smoke: re-ingesting a v2 snapshot succeeded")
endif()

# The out-of-core path must reproduce the in-memory path bit-for-bit.
foreach(combo "lcc;block" "lcc;grid2d" "tc;cyclic")
  list(GET combo 0 algo)
  list(GET combo 1 part)
  run_checked(${ATLC_RUN} --input ${WORK_DIR}/g.bin --seed ${seed}
              --algo ${algo} --partition ${part} --ranks ${ranks}
              --out ${WORK_DIR}/mem_${algo}_${part}.csv)
  run_checked(${ATLC_RUN} --snapshot ${WORK_DIR}/g.v2
              --algo ${algo} --partition ${part} --ranks ${ranks}
              --out ${WORK_DIR}/ooc_${algo}_${part}.csv)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/mem_${algo}_${part}.csv
                  ${WORK_DIR}/ooc_${algo}_${part}.csv
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "ingest_smoke: ${algo}/${part} CSVs differ between the "
            "in-memory and snapshot paths")
  endif()
endforeach()

message(STATUS "ingest_smoke: all snapshot-path CSVs bit-identical")
