#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans the given markdown files (and every *.md under given directories)
for inline links/images `[text](target)` and reference definitions
`[label]: target`, and verifies that every relative target resolves to an
existing file or directory, relative to the file containing the link.
External schemes (http/https/mailto), pure in-page anchors (#...), and
absolute paths are skipped; a `#fragment` suffix on a relative target is
stripped before the existence check (fragments themselves are not
validated). Exits non-zero listing every broken link.

Usage: tools/check_md_links.py README.md DESIGN.md docs ...
       (no arguments: checks *.md at the repo root plus docs/)

Stdlib only — runs anywhere CI has a python3.
"""

import os
import re
import sys

# Inline [text](target "title") — target ends at whitespace or ')';
# reference definitions [label]: target at line start.
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_code(text: str) -> str:
    """Drop fenced and inline code spans so example snippets aren't checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def collect_files(args):
    files, missing = [], []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif os.path.isfile(arg):
            files.append(arg)
        else:
            missing.append(arg)
    return files, missing


def check_file(path):
    broken = []
    with open(path, encoding="utf-8") as f:
        text = strip_code(f.read())
    targets = INLINE_RE.findall(text) + REFDEF_RE.findall(text)
    base = os.path.dirname(path) or "."
    for target in targets:
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        if target.startswith("/"):  # absolute: outside the repo's control
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not os.path.exists(os.path.join(base, rel)):
            broken.append((path, target))
    return broken


def main(argv):
    args = argv[1:]
    if not args:
        args = [p for p in sorted(os.listdir(".")) if p.endswith(".md")]
        if os.path.isdir("docs"):
            args.append("docs")
    files, missing = collect_files(args)
    for arg in missing:
        print(f"check_md_links: no such file or directory: {arg}",
              file=sys.stderr)
    if missing:
        return 2
    if not files:
        print("check_md_links: no markdown files found", file=sys.stderr)
        return 2
    broken = []
    for path in files:
        broken.extend(check_file(path))
    for path, target in broken:
        print(f"BROKEN LINK: {path}: ({target})", file=sys.stderr)
    print(f"check_md_links: {len(files)} files, "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
