// atlc_run — command-line driver for the full system: compute LCC, global
// TC, or a per-edge similarity analytic (Jaccard, overlap coefficient,
// Adamic–Adar) on an edge-list file (or a generated R-MAT instance) with
// the complete engine flag surface, and emit results as CSV for downstream
// analysis. `--stream-batches` switches to the dynamic engine (atlc::stream):
// apply generated update batches and maintain TC/LCC incrementally.
//
//   atlc_run --input graph.txt --algo lcc --ranks 16 --cache --out lcc.csv
//   atlc_run --rmat-scale 14 --algo tc --ranks 32 --pipeline-depth 4
//   atlc_run --input graph.txt --algo adamic-adar --cache --scores degree
//   atlc_run --input graph.txt --stream-batches 8 --batch-size 1024 --cache
//   atlc_run --input snap.txt --convert snap.bin   # binary snapshot, exit
//   atlc_run --snapshot graph.v2 --algo lcc        # atlc_ingest output;
//     skips clean/relabel and seek-reads each rank's CSR slice out of core
#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "atlc/core/jaccard.hpp"
#include "atlc/core/lcc.hpp"
#include "atlc/core/similarity.hpp"
#include "atlc/graph/clean.hpp"
#include "atlc/graph/degree_stats.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/ingest/snapshot.hpp"
#include "atlc/obs/trace.hpp"
#include "atlc/stream/stream_engine.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/timer.hpp"

namespace {

using namespace atlc;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f && f != stdout) std::fclose(f);
  }
};

std::unique_ptr<std::FILE, FileCloser> open_out(const std::string& path) {
  if (path.empty() || path == "-")
    return std::unique_ptr<std::FILE, FileCloser>(stdout);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "atlc_run: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return std::unique_ptr<std::FILE, FileCloser>(f);
}

core::EngineConfig engine_config(const util::Cli& cli,
                                 const graph::CSRGraph& g) {
  core::EngineConfig cfg;
  cfg.cost = intersect::CostModel::calibrate();
  const std::string& method = cli.get_string("method");
  cfg.method = method == "ssi"      ? intersect::Method::SSI
               : method == "binary" ? intersect::Method::Binary
                                    : intersect::Method::Hybrid;
  cfg.double_buffer = !cli.get_flag("no-overlap");
  cfg.pipeline_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("pipeline-depth")));
  cfg.hub_fraction = cli.get_double("hub-frac");
  if (cli.get_flag("cache")) {
    cfg.use_cache = true;
    cfg.cache_sizing = core::CacheSizing::paper_default(
        g.num_vertices(),
        static_cast<std::uint64_t>(cli.get_double("cache-frac") *
                                   static_cast<double>(g.csr_bytes())));
    cfg.victim_policy = cli.get_string("scores") == "degree"
                            ? clampi::VictimPolicy::UserScore
                            : clampi::VictimPolicy::LruPositional;
    cfg.cache_adaptive = cli.get_flag("adaptive");
  }
  return cfg;
}

/// --stats-json: the run's aggregate CommStats/CacheStats/makespan as one
/// JSON document, for one-off runs without the bench harness.
bool write_stats_json(const std::string& path, const std::string& algo,
                      const rma::Runtime::Result& run,
                      const clampi::CacheStats& offsets,
                      const clampi::CacheStats& adj) {
  util::Json doc = util::Json::object();
  doc["algo"] = algo;
  doc["ranks"] = run.stats.size();
  doc["makespan_s"] = run.makespan;
  doc["wall_seconds"] = run.wall_seconds;
  doc["comm_total"] = util::to_json(run.total());
  util::Json per_rank = util::Json::array();
  for (const auto& s : run.stats) per_rank.push_back(util::to_json(s));
  doc["comm_per_rank"] = std::move(per_rank);
  util::Json clocks = util::Json::array();
  for (const double c : run.clocks) clocks.push_back(c);
  doc["clocks"] = std::move(clocks);
  doc["offsets_cache"] = util::to_json(offsets);
  doc["adj_cache"] = util::to_json(adj);
  doc["peak_rss_bytes"] = util::peak_rss_bytes();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = doc.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void print_run_summary(const rma::Runtime::Result& run,
                       const clampi::CacheStats& adj) {
  const auto total = run.total();
  std::fprintf(stderr,
               "# makespan %.4f s (virtual) | wall %.2f s | remote gets "
               "%llu | comm %.3f s | compute %.3f s | cache hits %.1f%%\n",
               run.makespan, run.wall_seconds,
               static_cast<unsigned long long>(total.remote_gets),
               total.comm_seconds, total.compute_seconds,
               100.0 * adj.hit_rate());
  if (total.hub_local_hits > 0)
    std::fprintf(stderr, "# hub replica served %llu fetches locally\n",
                 static_cast<unsigned long long>(total.hub_local_hits));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("atlc_run",
                "distributed LCC / TC / Jaccard on an edge list or R-MAT");
  cli.add_string("input", "SNAP-format edge list ('' = generate R-MAT)", "");
  cli.add_string("snapshot",
                 "v2 partition-sliced snapshot (atlc_ingest output): the "
                 "payload is already cleaned/relabeled, so --seed cleaning "
                 "is skipped and each rank's CSR slice is seek-read from "
                 "the file",
                 "");
  cli.add_flag("directed", "treat the input as directed", false);
  cli.add_int("rmat-scale", "R-MAT scale when generating", 13);
  cli.add_int("rmat-ef", "R-MAT edge factor when generating", 16);
  cli.add_int("seed", "generator / relabeling seed", 1);
  cli.add_string("algo", "lcc | tc | jaccard | overlap | adamic-adar", "lcc");
  cli.add_int("ranks", "simulated compute nodes", 8);
  cli.add_string("partition", "block | cyclic | degree1d | grid2d", "block");
  cli.add_double("hub-frac",
                 "replicate the adjacency of this fraction of the "
                 "highest-degree vertices on every rank (0 = off)",
                 0.0);
  cli.add_string("method", "hybrid | ssi | binary", "hybrid");
  cli.add_flag("no-overlap", "disable transfer/compute overlap (depth 1)",
               false);
  cli.add_int("pipeline-depth",
              "prefetch pipeline depth k (2 = paper double buffering)", 2);
  cli.add_flag("cache", "enable CLaMPI-style RMA caching", false);
  cli.add_double("cache-frac", "cache budget as fraction of CSR bytes", 0.5);
  cli.add_string("scores", "clampi | degree (victim-selection scores)",
                 "degree");
  cli.add_flag("adaptive", "enable adaptive hash resizing", false);
  cli.add_string("trace",
                 "write a Chrome trace-event JSON (Perfetto-loadable) of "
                 "the run's virtual-time spans to this path",
                 "");
  cli.add_flag("trace-wall",
               "stamp trace events with wall-clock time too (machine-"
               "dependent: forfeits byte-identical traces)",
               false);
  cli.add_string("stats-json",
                 "write aggregated CommStats/CacheStats/makespan JSON to "
                 "this path",
                 "");
  cli.add_string("out", "output CSV path ('-' = stdout)", "-");
  cli.add_flag("stats-only", "skip the per-item CSV body", false);
  cli.add_string("convert",
                 "snapshot the loaded edge list to this binary file and "
                 "exit (skips the 6x text-parse cost on later runs)",
                 "");
  cli.add_int("stream-batches",
              "apply this many update batches with the incremental "
              "streaming engine (0 = static run)",
              0);
  cli.add_int("batch-size", "updates per streaming batch", 256);
  cli.add_double("stream-insert-frac",
                 "fraction of streamed updates that are insertions", 0.7);
  if (!cli.parse(argc, argv)) return 1;

  // --- load or generate the graph, then clean it (paper Sec. II-B).
  util::Timer load_timer;
  graph::EdgeList edges;
  auto dir = cli.get_flag("directed") ? graph::Directedness::Directed
                                      : graph::Directedness::Undirected;
  std::unique_ptr<ingest::SnapshotReader> snap;
  if (!cli.get_string("snapshot").empty()) {
    if (!cli.get_string("input").empty()) {
      std::fprintf(stderr,
                   "atlc_run: --snapshot and --input are mutually "
                   "exclusive\n");
      return 1;
    }
    if (!cli.get_string("convert").empty()) {
      std::fprintf(stderr,
                   "atlc_run: --convert does not apply to --snapshot input "
                   "(a snapshot is already binary)\n");
      return 1;
    }
    try {
      snap = std::make_unique<ingest::SnapshotReader>(
          cli.get_string("snapshot"));
      edges = snap->read_all();
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "atlc_run: %s\n", ex.what());
      return 1;
    }
    dir = edges.directedness();
  } else if (!cli.get_string("input").empty()) {
    // Format-sniffing load: SNAP text or an ATLC binary snapshot.
    edges = graph::load_edges(cli.get_string("input"), dir);
  } else {
    edges = graph::generate_rmat(
        {.scale = static_cast<unsigned>(cli.get_int("rmat-scale")),
         .edge_factor = static_cast<unsigned>(cli.get_int("rmat-ef")),
         .seed = static_cast<std::uint64_t>(cli.get_int("seed")),
         .directedness = dir});
  }
  if (!cli.get_string("convert").empty()) {
    // Snapshot the edge list as loaded (pre-clean, so the binary is an
    // exact stand-in for the original input on any later invocation).
    graph::save_binary_edges(edges, cli.get_string("convert"));
    std::fprintf(stderr, "# wrote %zu edges to %s (binary, %.1f s total)\n",
                 edges.num_edges(), cli.get_string("convert").c_str(),
                 load_timer.elapsed_s());
    return 0;
  }
  // A v2 snapshot already went through the fused clean/relabel in
  // atlc_ingest; cleaning again would re-permute the ids.
  if (!snap)
    graph::clean(edges, {.relabel_seed = static_cast<std::uint64_t>(
                             cli.get_int("seed"))});
  const auto g = graph::CSRGraph::from_edges(edges);
  const auto deg = graph::degree_stats(g);
  std::fprintf(stderr,
               "# graph: %u vertices, %llu edge slots, max deg %u, "
               "gini %.2f (loaded in %.1f s)\n",
               g.num_vertices(),
               static_cast<unsigned long long>(g.num_edges()), deg.max,
               deg.gini, load_timer.elapsed_s());

  const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
  const std::string& part_name = cli.get_string("partition");
  graph::PartitionKind partition;
  if (part_name == "block" || part_name == "block1d") {
    partition = graph::PartitionKind::Block1D;
  } else if (part_name == "cyclic" || part_name == "cyclic1d") {
    partition = graph::PartitionKind::Cyclic1D;
  } else if (part_name == "degree1d") {
    partition = graph::PartitionKind::DegreeBalanced1D;
  } else if (part_name == "grid2d") {
    partition = graph::PartitionKind::Grid2D;
  } else {
    std::fprintf(stderr,
                 "atlc_run: unknown --partition '%s' (block | cyclic | "
                 "degree1d | grid2d)\n",
                 part_name.c_str());
    return 1;
  }
  auto cfg = engine_config(cli, g);
  // Tracing is wired only when requested: a null EngineConfig::trace keeps
  // every hook down to a single pointer test, so untraced runs stay
  // bit-identical to pre-obs builds.
  obs::TraceCollector trace;
  trace.capture_wall = cli.get_flag("trace-wall");
  const std::string& trace_path = cli.get_string("trace");
  const std::string& stats_path = cli.get_string("stats-json");
  if (!trace_path.empty()) cfg.trace = &trace;
  if (snap) {
    // Out-of-core build: the static engine seek-reads each rank's slice
    // from the snapshot's extent index. The streaming engine rebuilds rows
    // in memory as updates land, so its graph builds stay in-memory; a
    // rank-count mismatch falls back too (the slice index is per-rank).
    if (cli.get_int("stream-batches") > 0) {
      std::fprintf(stderr,
                   "# snapshot slices unused by the streaming engine "
                   "(updates rebuild rows in memory)\n");
    } else if (snap->ranks() != ranks) {
      std::fprintf(stderr,
                   "# snapshot slice index was built for %u ranks, run uses "
                   "%u: falling back to in-memory slicing\n",
                   snap->ranks(), ranks);
    } else {
      cfg.slice_source = snap.get();
    }
  }
  auto out = open_out(cli.get_string("out"));

  const std::string& algo = cli.get_string("algo");
  // Shared artifact emission for every engine path (stream / lcc / tc /
  // similarity): the Chrome trace and the --stats-json document.
  const auto emit_artifacts = [&](const rma::Runtime::Result& run,
                                  const clampi::CacheStats& offsets,
                                  const clampi::CacheStats& adj) {
    if (!trace_path.empty()) {
      if (!trace.write_chrome_trace(trace_path)) {
        std::fprintf(stderr, "atlc_run: cannot write %s\n",
                     trace_path.c_str());
        std::exit(1);
      }
      std::fprintf(stderr, "# trace: %zu events -> %s\n",
                   trace.total_events(), trace_path.c_str());
    }
    if (!stats_path.empty()) {
      if (!write_stats_json(stats_path, algo, run, offsets, adj)) {
        std::fprintf(stderr, "atlc_run: cannot write %s\n",
                     stats_path.c_str());
        std::exit(1);
      }
    }
  };
  // Friendly rejections for the 2D partition: the incremental stream
  // counter and the per-edge similarity analytics are 1D-only (the library
  // would abort on the same conditions via ATLC_CHECK).
  if (partition == graph::PartitionKind::Grid2D &&
      cli.get_int("stream-batches") > 0) {
    std::fprintf(stderr,
                 "atlc_run: --partition grid2d does not support "
                 "--stream-batches yet (incremental counting is 1D-only)\n");
    return 1;
  }
  if (partition == graph::PartitionKind::Grid2D &&
      (algo == "jaccard" || algo == "overlap" || algo == "adamic-adar")) {
    std::fprintf(stderr,
                 "atlc_run: --partition grid2d does not support per-edge "
                 "similarity scores (they need whole adjacency rows)\n");
    return 1;
  }
  if (cli.get_int("stream-batches") > 0) {
    if (algo != "lcc" && algo != "tc") {
      std::fprintf(stderr,
                   "atlc_run: --stream-batches maintains TC/LCC only "
                   "(--algo %s unsupported)\n",
                   algo.c_str());
      return 1;
    }
    if (dir == graph::Directedness::Directed) {
      std::fprintf(stderr,
                   "atlc_run: --stream-batches needs an undirected graph\n");
      return 1;
    }
    stream::WorkloadConfig wl;
    wl.num_batches = static_cast<std::size_t>(cli.get_int("stream-batches"));
    wl.batch_size = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("batch-size")));
    wl.insert_fraction = cli.get_double("stream-insert-frac");
    wl.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto batches = stream::generate_batches(g, wl);

    stream::StreamOptions sopts;
    sopts.engine = cfg;
    sopts.partition = partition;
    const auto r = stream::run_streaming_lcc(g, batches, ranks, sopts);
    emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
    print_run_summary(r.run, r.adj_cache_total);
    std::fprintf(stderr,
                 "# cold count %.4f s | stream %.4f s over %zu batches | "
                 "stale evictions %llu\n",
                 r.initial_makespan, r.stream_makespan, batches.size(),
                 static_cast<unsigned long long>(
                     r.adj_cache_total.stale_evictions +
                     r.offsets_cache_total.stale_evictions));
    for (std::size_t bi = 0; bi < r.batches.size(); ++bi) {
      const auto& b = r.batches[bi];
      std::fprintf(stderr,
                   "#   batch %zu: +%llu -%llu edges, %lld tri delta -> "
                   "%llu triangles, %llu rows, %.5f s\n",
                   bi, static_cast<unsigned long long>(b.effective_insertions),
                   static_cast<unsigned long long>(b.effective_deletions),
                   static_cast<long long>(b.triangles_delta),
                   static_cast<unsigned long long>(b.global_triangles),
                   static_cast<unsigned long long>(b.rows_rebuilt),
                   b.makespan);
    }
    if (algo == "tc") {
      std::fprintf(out.get(), "global_triangles\n%llu\n",
                   static_cast<unsigned long long>(r.global_triangles));
    } else if (!cli.get_flag("stats-only")) {
      std::fprintf(out.get(), "vertex,triangles,lcc\n");
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        std::fprintf(out.get(), "%u,%llu,%.6f\n", v,
                     static_cast<unsigned long long>(r.triangles[v]),
                     r.lcc[v]);
    }
    return 0;
  }
  if (algo == "lcc") {
    const auto r = core::run_distributed_lcc(g, ranks, cfg, {}, partition);
    emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
    print_run_summary(r.run, r.adj_cache_total);
    std::fprintf(stderr, "# global triangles: %llu\n",
                 static_cast<unsigned long long>(r.global_triangles));
    if (!cli.get_flag("stats-only")) {
      std::fprintf(out.get(), "vertex,degree,triangles,lcc\n");
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        std::fprintf(out.get(), "%u,%u,%llu,%.6f\n", v, g.degree(v),
                     static_cast<unsigned long long>(r.triangles[v]),
                     r.lcc[v]);
    }
  } else if (algo == "tc") {
    const auto r = core::run_distributed_tc_result(g, ranks, cfg, {}, partition);
    emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
    std::fprintf(out.get(), "global_triangles\n%llu\n",
                 static_cast<unsigned long long>(r.global_triangles));
  } else if (algo == "jaccard" || algo == "overlap" || algo == "adamic-adar") {
    // The per-edge similarity analytics share the slot layout and the
    // EdgeAnalyticStats block, so one emission path serves all three.
    std::vector<double> scores;
    if (algo == "jaccard") {
      auto r = core::run_distributed_jaccard(g, ranks, cfg, {}, partition);
      emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
      print_run_summary(r.run, r.adj_cache_total);
      scores = std::move(r.similarity);
    } else if (algo == "overlap") {
      auto r = core::run_distributed_overlap(g, ranks, cfg, {}, partition);
      emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
      print_run_summary(r.run, r.adj_cache_total);
      scores = std::move(r.score);
    } else {
      auto r = core::run_distributed_adamic_adar(g, ranks, cfg, {}, partition);
      emit_artifacts(r.run, r.offsets_cache_total, r.adj_cache_total);
      print_run_summary(r.run, r.adj_cache_total);
      scores = std::move(r.score);
    }
    if (!cli.get_flag("stats-only")) {
      std::fprintf(out.get(), "u,v,%s\n", algo.c_str());
      std::size_t k = 0;
      for (graph::VertexId u = 0; u < g.num_vertices(); ++u)
        for (graph::VertexId v : g.neighbors(u))
          std::fprintf(out.get(), "%u,%u,%.6f\n", u, v, scores[k++]);
    }
  } else {
    std::fprintf(stderr, "atlc_run: unknown --algo '%s'\n", algo.c_str());
    return 1;
  }
  return 0;
}
