// atlc_trace — offline summarizer for atlc's Chrome trace-event files
// (DESIGN.md §12). Reads a trace written by `atlc_run --trace` (or
// `atlc_ingest --trace`), folds it through obs::MetricsRegistry, and prints
// where the virtual time went: per-cause stall breakdown, per-rank
// compute/comm balance, phase-span totals, NIC transfer latency
// percentiles, the epoch-bucketed cache hit-rate series, and the hottest
// remotely-fetched rows.
//
//   atlc_run --rmat-scale 13 --algo lcc --cache --trace run.json
//   atlc_trace --input run.json
//   atlc_trace --input run.json --json metrics.json   # full aggregate dump
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "atlc/obs/metrics.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/stats.hpp"

namespace {

using namespace atlc;

std::string read_file(const std::string& path, bool* ok) {
  *ok = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  *ok = std::ferror(f) == 0;
  std::fclose(f);
  return text;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

/// Per-cause / per-span rows sorted by descending total seconds (name
/// breaks ties so the report is deterministic).
void print_breakdown(const char* title,
                     const std::map<std::string, std::vector<double>>& m) {
  if (m.empty()) return;
  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(m.size());
  double total = 0.0;
  for (const auto& [name, per_rank] : m) {
    rows.emplace_back(name, sum(per_rank));
    total += rows.back().second;
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::printf("%s (%.4f rank-seconds total)\n", title, total);
  for (const auto& [name, secs] : rows)
    std::printf("  %-16s %10.4f s  %5.1f%%\n", name.c_str(), secs,
                total > 0.0 ? 100.0 * secs / total : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("atlc_trace",
                "summarize an atlc Chrome trace-event file (virtual-time "
                "stall breakdown, cache series, hottest rows)");
  cli.add_string("input", "trace JSON written by atlc_run --trace", "");
  cli.add_int("top", "hottest remote rows to list", 10);
  cli.add_string("json",
                 "also write the full MetricsRegistry aggregate as JSON to "
                 "this path ('-' = stdout)",
                 "");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.get_string("input").empty()) {
    std::fprintf(stderr, "atlc_trace: --input is required\n");
    return 1;
  }

  bool ok = false;
  const std::string text = read_file(cli.get_string("input"), &ok);
  if (!ok) {
    std::fprintf(stderr, "atlc_trace: cannot read %s\n",
                 cli.get_string("input").c_str());
    return 1;
  }
  std::string error;
  const auto doc = util::Json::parse(text, &error);
  if (!doc) {
    std::fprintf(stderr, "atlc_trace: %s: %s\n",
                 cli.get_string("input").c_str(), error.c_str());
    return 1;
  }

  obs::MetricsRegistry reg;
  reg.ingest_chrome(*doc);

  // --- headline counters.
  std::printf("== %s ==\n", cli.get_string("input").c_str());
  for (const auto& [name, value] : reg.counters())
    std::printf("  %-20s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));

  // --- where the virtual time went.
  std::printf("\n");
  print_breakdown("charge causes", reg.cause_seconds());
  std::printf("\n");
  print_breakdown("categories", reg.cat_seconds());
  std::printf("\n");
  print_breakdown("phase spans", reg.span_seconds());

  // --- per-rank compute/comm balance (load-imbalance at a glance).
  const auto& cats = reg.cat_seconds();
  const auto comp = cats.find("compute");
  const auto comm = cats.find("comm");
  if (comp != cats.end() || comm != cats.end()) {
    const std::size_t ranks = std::max(
        comp != cats.end() ? comp->second.size() : 0,
        comm != cats.end() ? comm->second.size() : 0);
    std::printf("\nper-rank timeline (s)\n  rank   compute      comm\n");
    for (std::size_t r = 0; r < ranks; ++r) {
      const double c =
          comp != cats.end() && r < comp->second.size() ? comp->second[r] : 0;
      const double m =
          comm != cats.end() && r < comm->second.size() ? comm->second[r] : 0;
      std::printf("  %4zu %9.4f %9.4f\n", r, c, m);
    }
  }

  // --- latency / size distributions.
  bool header = false;
  for (const auto& [name, samples] : reg.samples()) {
    if (samples.empty()) continue;
    if (!header) {
      std::printf("\ndistributions            n       p50       p90       "
                  "p99       max\n");
      header = true;
    }
    std::vector<double> s = samples;
    std::sort(s.begin(), s.end());
    std::printf("  %-18s %7zu %9.3g %9.3g %9.3g %9.3g\n", name.c_str(),
                s.size(), util::percentile(s, 50.0),
                util::percentile(s, 90.0), util::percentile(s, 99.0),
                s.back());
  }

  // --- cache hit rate by CLaMPI window epoch.
  if (!reg.cache_epochs().empty()) {
    std::printf("\ncache by epoch    hits    misses     stale  hit-rate\n");
    for (const auto& [epoch, st] : reg.cache_epochs())
      std::printf("  epoch %4llu %8llu %9llu %9llu    %5.1f%%\n",
                  static_cast<unsigned long long>(epoch),
                  static_cast<unsigned long long>(st.hits),
                  static_cast<unsigned long long>(st.misses),
                  static_cast<unsigned long long>(st.stale),
                  100.0 * st.hit_rate());
  }

  // --- hottest remotely-fetched rows (hub-replication candidates).
  const auto top = reg.top_rows(static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("top"))));
  if (!top.empty()) {
    std::printf("\nhottest remote rows\n");
    for (const auto& [v, n] : top)
      std::printf("  v=%-10llu %llu fetches\n",
                  static_cast<unsigned long long>(v),
                  static_cast<unsigned long long>(n));
  }

  if (!cli.get_string("json").empty()) {
    const std::string out = reg.to_json().dump(2);
    if (cli.get_string("json") == "-") {
      std::printf("%s\n", out.c_str());
    } else {
      std::FILE* f = std::fopen(cli.get_string("json").c_str(), "w");
      bool wrote = f != nullptr &&
                   std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
                   std::fputc('\n', f) != EOF;
      if (f) wrote = (std::fclose(f) == 0) && wrote;
      if (!wrote) {
        std::fprintf(stderr, "atlc_trace: cannot write %s\n",
                     cli.get_string("json").c_str());
        return 1;
      }
    }
  }
  return 0;
}
