// atlc_ingest — out-of-core ingest pipeline (DESIGN.md §11): stream a SNAP
// text or v1 binary edge list through chunked parallel parse, fused
// clean/sort/dedup/relabel (spilling sorted runs to disk under
// --mem-budget), and write a v2 partition-sliced snapshot whose slice index
// lets `atlc_run --snapshot` seek-read each rank's CSR slice.
//
//   atlc_ingest --input orkut.txt --output orkut.v2 --ranks 16
//   atlc_ingest --input snap.bin --output snap.v2 --mem-budget-mb 64
//   atlc_run --snapshot orkut.v2 --algo lcc --ranks 16
//
// The snapshot payload is bit-identical to load_edges() + graph::clean()
// with the matching seed, for any --threads/--chunk-mb/--mem-budget-mb.
#include <cstdio>
#include <exception>
#include <string>

#include "atlc/ingest/pipeline.hpp"
#include "atlc/obs/trace.hpp"
#include "atlc/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace atlc;
  util::Cli cli("atlc_ingest",
                "out-of-core edge-list ingest -> v2 partition-sliced "
                "snapshot");
  cli.add_string("input", "SNAP text or ATLC v1 binary edge list", "");
  cli.add_string("output", "snapshot path to write", "");
  cli.add_int("ranks", "rank count the slice index is built for", 8);
  cli.add_flag("directed", "treat text input as directed (binary input "
               "records its own directedness)", false);
  cli.add_int("threads", "parse/sort threads (0 = OpenMP default)", 0);
  cli.add_double("chunk-mb", "target text read-window size in MiB", 8.0);
  cli.add_double("mem-budget-mb",
                 "spill sorted runs to disk past this many MiB per sort "
                 "stage (0 = fully in memory)",
                 0.0);
  cli.add_string("relabel", "random | degree | none", "random");
  cli.add_int("seed", "relabeling seed (random mode)", 1);
  cli.add_flag("keep-low-degree",
               "keep degree<2 vertices (skip the clean() low-degree pass)",
               false);
  cli.add_string("tmp-dir", "directory for spill files ('' = alongside "
                 "the output)", "");
  cli.add_string("trace",
                 "write a Chrome trace-event JSON of the pipeline's stage "
                 "spans (wall clock; not deterministic) to this path",
                 "");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_string("input").empty() || cli.get_string("output").empty()) {
    std::fprintf(stderr, "atlc_ingest: --input and --output are required\n");
    return 1;
  }

  ingest::IngestOptions opt;
  opt.chunk_bytes = static_cast<std::size_t>(
      cli.get_double("chunk-mb") * 1024.0 * 1024.0);
  if (opt.chunk_bytes == 0) opt.chunk_bytes = 1;
  opt.num_threads = static_cast<int>(cli.get_int("threads"));
  opt.mem_budget_bytes = static_cast<std::uint64_t>(
      cli.get_double("mem-budget-mb") * 1024.0 * 1024.0);
  opt.ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
  opt.directedness = cli.get_flag("directed")
                         ? graph::Directedness::Directed
                         : graph::Directedness::Undirected;
  const std::string& relabel = cli.get_string("relabel");
  if (relabel == "random") {
    opt.relabel = ingest::RelabelMode::Random;
  } else if (relabel == "degree") {
    opt.relabel = ingest::RelabelMode::DegreeDescending;
  } else if (relabel == "none") {
    opt.relabel = ingest::RelabelMode::None;
  } else {
    std::fprintf(stderr,
                 "atlc_ingest: unknown --relabel '%s' (random | degree | "
                 "none)\n",
                 relabel.c_str());
    return 1;
  }
  opt.relabel_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (opt.relabel == ingest::RelabelMode::Random && opt.relabel_seed == 0)
    opt.relabel = ingest::RelabelMode::None;  // clean()'s seed-0 convention
  opt.remove_degree_lt2 = !cli.get_flag("keep-low-degree");
  opt.tmp_dir = cli.get_string("tmp-dir");
  // Ingest spans carry wall timestamps (no virtual clock here), so the
  // trace is informative but not byte-deterministic.
  obs::TraceCollector trace;
  trace.capture_wall = true;
  const std::string& trace_path = cli.get_string("trace");
  if (!trace_path.empty()) opt.trace = &trace;

  ingest::IngestReport rep;
  try {
    rep = ingest::run_ingest(cli.get_string("input"),
                             cli.get_string("output"), opt);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "atlc_ingest: %s\n", ex.what());
    return 1;
  }
  if (!trace_path.empty()) {
    if (!trace.write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "atlc_ingest: cannot write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "# trace: %zu events -> %s\n", trace.total_events(),
                 trace_path.c_str());
  }

  const double mb = 1024.0 * 1024.0;
  std::fprintf(stderr,
               "# %s input: %.1f MiB, %llu lines, %llu pairs -> %llu raw "
               "edges\n",
               rep.input_kind.c_str(),
               static_cast<double>(rep.bytes_read) / mb,
               static_cast<unsigned long long>(rep.lines),
               static_cast<unsigned long long>(rep.pairs_parsed),
               static_cast<unsigned long long>(rep.raw_edges));
  std::fprintf(stderr,
               "# clean: -%llu dups, -%llu self loops, -%u low-degree "
               "vertices -> %u vertices, %llu edge slots\n",
               static_cast<unsigned long long>(rep.duplicates_removed),
               static_cast<unsigned long long>(rep.self_loops_removed),
               rep.vertices_removed, rep.num_vertices,
               static_cast<unsigned long long>(rep.num_edges));
  std::fprintf(stderr,
               "# snapshot: %.1f MiB, %u-rank slice index, extents "
               "block=%llu cyclic=%llu degree=%llu grid=%llu\n",
               static_cast<double>(rep.snapshot_bytes) / mb, rep.ranks,
               static_cast<unsigned long long>(rep.extents[0]),
               static_cast<unsigned long long>(rep.extents[1]),
               static_cast<unsigned long long>(rep.extents[2]),
               static_cast<unsigned long long>(rep.extents[3]));
  std::fprintf(stderr,
               "# time: parse %.2f s + sort %.2f s + merge %.2f s + write "
               "%.2f s = %.2f s total (%zu spill runs) | %.2f Medges/s | "
               "peak rss %.1f MiB\n",
               rep.parse_seconds, rep.sort_seconds, rep.merge_seconds,
               rep.write_seconds, rep.total_seconds, rep.spill_runs,
               rep.total_seconds > 0.0
                   ? static_cast<double>(rep.raw_edges) / rep.total_seconds /
                         1e6
                   : 0.0,
               static_cast<double>(rep.peak_rss_bytes) / mb);
  return 0;
}
