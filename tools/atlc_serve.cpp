// atlc_serve — drive the resident query-serving layer (DESIGN.md §13) over
// a synthetic Zipf-skewed point-query stream interleaved with update
// batches, and report the serving metrics that matter at "millions of
// users" scale: virtual p50/p99 query latency, admission rejections and
// HotVertexCache hit rates, per epoch and in aggregate.
//
//   atlc_serve --scale 12 --ranks 8 --epochs 8 --queries-per-epoch 4096
//   atlc_serve --zipf 1.2 --hot-entries 4096 --batch-size 256
//   atlc_serve --input graph.txt --capacity 512 --stats-json out.json
//
// Every number is virtual-time deterministic for a fixed seed: two runs
// with the same flags print byte-identical reports (the serve bench
// scenario and tests/test_serve.cpp pin that property down).
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "atlc/graph/clean.hpp"
#include "atlc/graph/generators.hpp"
#include "atlc/graph/io.hpp"
#include "atlc/obs/trace.hpp"
#include "atlc/serve/query_engine.hpp"
#include "atlc/serve/workload.hpp"
#include "atlc/util/cli.hpp"
#include "atlc/util/json.hpp"
#include "atlc/util/recorder.hpp"
#include "atlc/util/table.hpp"

namespace {

using namespace atlc;

util::Json stats_json(const serve::ServeResult& res) {
  util::Json doc = util::Json::object();
  const core::QueryStats& qs = res.stats;
  doc["submitted"] = qs.submitted;
  doc["answered"] = qs.answered;
  doc["rejected"] = qs.rejected;
  doc["latency_p50"] = qs.latency_percentile(50);
  doc["latency_p99"] = qs.latency_percentile(99);
  doc["build_makespan"] = res.build_makespan;
  doc["serve_makespan"] = res.serve_makespan;
  doc["makespan"] = qs.run.makespan;
  doc["edges_processed"] = qs.edges_processed;
  doc["remote_edges"] = qs.remote_edges;
  doc["comm"] = util::to_json(qs.run.total());
  doc["hot_cache"] = util::to_json(res.hot_cache_total);
  util::Json epochs = util::Json::array();
  for (const serve::EpochOutcome& e : res.epochs) {
    util::Json je = util::Json::object();
    je["submitted"] = e.submitted;
    je["accepted"] = e.accepted;
    je["rejected"] = e.rejected;
    je["hot_hits"] = e.hot_hits;
    je["effective_insertions"] = e.effective_insertions;
    je["effective_deletions"] = e.effective_deletions;
    je["rows_rebuilt"] = e.rows_rebuilt;
    je["query_makespan"] = e.query_makespan;
    je["update_makespan"] = e.update_makespan;
    epochs.push_back(std::move(je));
  }
  doc["epochs"] = std::move(epochs);
  util::Json per_query = util::Json::array();
  for (const core::QueryCost& qc : qs.per_query) {
    util::Json jq = util::Json::object();
    jq["id"] = qc.id;
    jq["epoch"] = static_cast<std::uint64_t>(qc.epoch);
    jq["edges"] = qc.edges_processed;
    jq["remote_edges"] = qc.remote_edges;
    jq["seconds"] = qc.seconds;
    per_query.push_back(std::move(jq));
  }
  doc["per_query"] = std::move(per_query);
  doc["peak_rss_bytes"] = util::peak_rss_bytes();
  return doc;
}

bool write_json(const std::string& path, const util::Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = doc.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("atlc_serve",
                "always-on query serving: Zipf point queries interleaved "
                "with update batches");
  cli.add_string("input", "SNAP-format edge list ('' = generate R-MAT)", "");
  cli.add_int("scale", "R-MAT scale when generating", 10);
  cli.add_int("edge-factor", "R-MAT edge factor when generating", 8);
  cli.add_int("graph-seed", "R-MAT seed", 13);
  cli.add_int("ranks", "simulated ranks", 8);
  cli.add_string("partition", "block | cyclic | degree1d", "block");
  cli.add_double("hub-frac", "replicated hub fraction (degree skew tier)",
                 0.0);
  cli.add_flag("cached", "enable the CLaMPI window cache", false);
  // Workload.
  cli.add_int("epochs", "serving epochs (query burst + update batch)", 8);
  cli.add_int("queries-per-epoch", "point queries arriving per epoch", 1024);
  cli.add_double("zipf", "query traffic skew (0 = uniform)", 1.0);
  cli.add_int("topk", "k for the recommendation queries", 8);
  cli.add_double("lcc-frac", "fraction of queries that are lcc(v)", 0.5);
  cli.add_double("common-frac", "fraction that are topk_common(v, k)", 0.3);
  cli.add_int("batch-size", "updates per epoch batch (0 = queries only)",
              128);
  cli.add_double("insert-frac", "insert share of each update batch", 0.7);
  cli.add_int("seed", "workload seed", 1);
  // Serving controls.
  cli.add_int("capacity", "admission queue bound per epoch", 1024);
  cli.add_int("hot-entries", "HotVertexCache slots (0 = off)", 1024);
  cli.add_int("hot-ways", "HotVertexCache bucket associativity", 4);
  cli.add_string("stats-json", "write the aggregate QueryStats document "
                 "('' = off)", "");
  cli.add_string("trace", "write a Chrome trace-event JSON of the serving "
                 "epochs ('' = off)", "");
  if (!cli.parse(argc, argv)) return 1;

  try {
    graph::EdgeList edges =
        cli.get_string("input").empty()
            ? graph::generate_rmat(
                  {.scale = static_cast<unsigned>(cli.get_int("scale")),
                   .edge_factor =
                       static_cast<unsigned>(cli.get_int("edge-factor")),
                   .seed = static_cast<std::uint64_t>(
                       cli.get_int("graph-seed")),
                   .directedness = graph::Directedness::Undirected})
            : graph::load_edges(cli.get_string("input"),
                                graph::Directedness::Undirected);
    graph::clean(edges);
    const graph::CSRGraph g = graph::CSRGraph::from_edges(edges);
    std::printf("graph: %u vertices, %zu directed edges\n", g.num_vertices(),
                g.num_edges());

    serve::QueryWorkloadConfig wc;
    wc.num_epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    wc.queries_per_epoch =
        static_cast<std::size_t>(cli.get_int("queries-per-epoch"));
    wc.zipf_skew = cli.get_double("zipf");
    wc.topk = static_cast<std::uint32_t>(cli.get_int("topk"));
    wc.lcc_fraction = cli.get_double("lcc-frac");
    wc.common_fraction = cli.get_double("common-frac");
    wc.batch_size = static_cast<std::size_t>(cli.get_int("batch-size"));
    wc.insert_fraction = cli.get_double("insert-frac");
    wc.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto epochs = serve::generate_query_stream(g, wc);

    serve::ServeOptions opts;
    opts.admission_capacity =
        static_cast<std::size_t>(cli.get_int("capacity"));
    opts.hot_cache.entries =
        static_cast<std::size_t>(cli.get_int("hot-entries"));
    opts.hot_cache.ways = static_cast<std::size_t>(cli.get_int("hot-ways"));
    opts.engine.hub_fraction = cli.get_double("hub-frac");
    const std::string& part = cli.get_string("partition");
    if (part == "block") {
      opts.partition = graph::PartitionKind::Block1D;
    } else if (part == "cyclic") {
      opts.partition = graph::PartitionKind::Cyclic1D;
    } else if (part == "degree1d") {
      opts.partition = graph::PartitionKind::DegreeBalanced1D;
    } else {
      std::fprintf(stderr,
                   "atlc_serve: unknown --partition '%s' (point queries "
                   "need whole rows: block | cyclic | degree1d)\n",
                   part.c_str());
      return 1;
    }
    if (cli.get_flag("cached")) {
      opts.engine.use_cache = true;
      opts.engine.cache_sizing = core::CacheSizing::paper_default(
          g.num_vertices(), g.csr_bytes() / 2);
    }
    obs::TraceCollector trace;
    if (!cli.get_string("trace").empty()) opts.engine.trace = &trace;

    const auto ranks = static_cast<std::uint32_t>(cli.get_int("ranks"));
    const serve::ServeResult res =
        serve::run_query_stream(g, epochs, ranks, opts);

    util::Table t({"epoch", "submitted", "accepted", "rejected", "hot hits",
                   "rows rebuilt", "query (s)", "update (s)"});
    for (std::size_t e = 0; e < res.epochs.size(); ++e) {
      const serve::EpochOutcome& eo = res.epochs[e];
      t.add_row({util::Table::fmt_int(e), util::Table::fmt_int(eo.submitted),
                 util::Table::fmt_int(eo.accepted),
                 util::Table::fmt_int(eo.rejected),
                 util::Table::fmt_int(eo.hot_hits),
                 util::Table::fmt_int(eo.rows_rebuilt),
                 util::Table::fmt(eo.query_makespan, 5),
                 util::Table::fmt(eo.update_makespan, 5)});
    }
    t.print("serving epochs (ranks=" + std::to_string(ranks) + ")");

    const core::QueryStats& qs = res.stats;
    std::printf(
        "\nanswered %llu/%llu (%llu rejected) | virtual latency p50 %.3e s, "
        "p99 %.3e s\n",
        static_cast<unsigned long long>(qs.answered),
        static_cast<unsigned long long>(qs.submitted),
        static_cast<unsigned long long>(qs.rejected),
        qs.latency_percentile(50), qs.latency_percentile(99));
    std::printf(
        "hot cache: %.1f%% hit rate (%llu hits, %llu stale, %llu evictions) "
        "| pipeline: %llu edges, %.0f%% remote\n",
        100.0 * res.hot_cache_total.hit_rate(),
        static_cast<unsigned long long>(res.hot_cache_total.hits),
        static_cast<unsigned long long>(res.hot_cache_total.stale_misses),
        static_cast<unsigned long long>(res.hot_cache_total.evictions),
        static_cast<unsigned long long>(qs.edges_processed),
        100.0 * qs.remote_edge_fraction());
    std::printf("virtual makespan: build %.5f s + serve %.5f s\n",
                res.build_makespan, res.serve_makespan);

    if (!cli.get_string("stats-json").empty()) {
      if (!write_json(cli.get_string("stats-json"), stats_json(res))) {
        std::fprintf(stderr, "atlc_serve: cannot write %s\n",
                     cli.get_string("stats-json").c_str());
        return 1;
      }
      std::printf("stats JSON -> %s\n", cli.get_string("stats-json").c_str());
    }
    if (!cli.get_string("trace").empty()) {
      if (!trace.write_chrome_trace(cli.get_string("trace"))) {
        std::fprintf(stderr, "atlc_serve: cannot write %s\n",
                     cli.get_string("trace").c_str());
        return 1;
      }
      std::printf("trace -> %s\n", cli.get_string("trace").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "atlc_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
